// Hierarchical timing wheel: the O(1) near-horizon half of the hybrid
// scheduler (EventQueue keeps the indexed binary heap as the far-timer
// overflow level).
//
// Three levels of 64 buckets each, with a base tick of 2^kTickShift
// picoseconds (4.096 ns), cover a rolling horizon of 2^30 ps (~1.07 ms) —
// serialization slots, propagation delays and CC rate timers all land in
// the wheel; far timers (RTOs, idle watchdogs) overflow to the heap, which
// stays tiny as a result. Insert and cancel are O(1); cascading is O(1)
// amortized (an entry moves down at most twice); finding the next
// non-empty bucket is one ctz over a per-level occupancy word.
//
// Ordering contract (shared with EventQueue): events are totally ordered by
// (time, schedule sequence). A bucket spans many distinct timestamps, so
// buckets are unordered contiguous vectors; when the cursor reaches a
// bucket its entries are swapped into a drain vector and sorted, which is
// what Peek()/Pop() serve from. The wheel refuses (`Accepts` == false)
// events at or behind the cursor's tick while the drain is live — those go
// to the overflow heap, which EventQueue already merges with the wheel at
// pop by (t, seq) — so the global pop order is exact, identical to a single
// heap, with no mid-drain insertion path.
//
// The wheel stores only {t, seq, slot} records. Callbacks, slot generations
// and the slot free list stay in EventQueue; the wheel writes each slot's
// current location (bucket coordinates or drain index) into the shared
// SlotMeta table so cancellation stays exact and O(1).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace fncc {

/// A scheduled-event record: absolute time, global schedule sequence (FIFO
/// tie-break for simultaneous events), and the owning callback slot.
struct SchedEntry {
  Time t;
  std::uint64_t seq;
  std::uint32_t slot;
};

/// Where a callback slot's queue entry currently lives. Written by both the
/// EventQueue heap and the TimingWheel; read on cancel/reschedule.
/// Encoding (tag = loc >> 30):
///   tag 0 — overflow-heap position (EventQueue's binary heap)
///   tag 1 — wheel bucket: level [29:28], bucket slot [27:20], index [19:0]
///   tag 2 — drain index [29:0]
///   kLocNone — not scheduled
inline constexpr std::uint32_t kLocNone = 0xFFFF'FFFF;
inline constexpr std::uint32_t kLocIndexMask = 0x3FFF'FFFF;
inline constexpr std::uint32_t kLocHeapTag = 0u << 30;
inline constexpr std::uint32_t kLocWheelTag = 1u << 30;
inline constexpr std::uint32_t kLocDrainTag = 2u << 30;

/// Slot bookkeeping, parallel to the callback table. 8 bytes per slot keeps
/// the write-hot location updates cache-resident (see event_queue.hpp).
struct SlotMeta {
  std::uint32_t generation = 0;  // bumped on release; guards stale ids
  std::uint32_t loc = kLocNone;
};

class TimingWheel {
 public:
  /// Base tick: 2^12 ps = 4.096 ns. Small enough that back-to-back ACK
  /// serializations (60 B at 100 Gbps = 4.8 ns) land in distinct buckets,
  /// large enough that one MTU serialization (~121 ns) spans ~30 ticks.
  static constexpr int kTickShift = 12;
  static constexpr int kLevels = 3;
  static constexpr int kSlotBits = 6;
  static constexpr std::uint32_t kWheelSlots = 1u << kSlotBits;  // 64
  static constexpr std::uint32_t kSlotMask = kWheelSlots - 1;
  /// Entries per bucket must fit the 20-bit index field of the loc word.
  static constexpr std::uint32_t kMaxBucketEntries = 1u << 20;

  /// `meta` is EventQueue's slot table; the wheel writes loc fields only.
  /// The pointee may reallocate (slot growth); the pointer must stay valid.
  explicit TimingWheel(std::vector<SlotMeta>* meta) : meta_(meta) {}

  /// True if an event at absolute time `t` belongs in the wheel given the
  /// current cursor; false means the caller keeps it in the overflow heap.
  /// Refused: far times (beyond the superblock horizon), past-cursor times,
  /// and the cursor's own tick while the drain is live (its bucket was
  /// already consumed).
  [[nodiscard]] bool Accepts(Time t) const {
    const std::uint64_t tick = Tick(t);
    if (tick > cur_) {
      return (tick >> (kLevels * kSlotBits)) ==
             (cur_ >> (kLevels * kSlotBits));
    }
    return tick == cur_ && !DrainLive();
  }

  /// Inserts an event. Precondition: Accepts(e.t).
  void Insert(const SchedEntry& e) {
    assert(Accepts(e.t));
    ++count_;
    Place(e);
  }

  /// Removes the entry for `slot` given its location word. O(1).
  void Remove(std::uint32_t slot, std::uint32_t loc);

  /// Earliest event, or nullptr when the wheel is empty. Lazily advances the
  /// cursor / cascades levels; pointer is valid until the next mutation.
  [[nodiscard]] const SchedEntry* Peek() {
    if (count_ == 0) {
      if (!drain_.empty()) {
        drain_.clear();
        drain_head_ = 0;
      }
      return nullptr;
    }
    if (DrainLive()) {
      const SchedEntry* e = &drain_[drain_head_];
      if (e->slot != kDeadSlot) [[likely]] return e;
    }
    return PeekSlow();
  }

  /// Extracts the earliest event. Precondition: Peek() != nullptr. The
  /// caller clears the slot's loc (via its slot-release path).
  SchedEntry Pop() {
    const SchedEntry* e = Peek();
    assert(e != nullptr && "Pop on empty wheel");
    const SchedEntry out = *e;
    ++drain_head_;
    --count_;
    return out;
  }

  /// Moves the cursor forward to `t`'s tick. Only legal while the wheel is
  /// empty (there are no entries whose relative position could change);
  /// called when the overflow heap advances time past the wheel horizon so
  /// subsequently scheduled near events use the wheel again.
  void AdvanceTo(Time t) {
    assert(count_ == 0 && "AdvanceTo with events in the wheel");
    drain_.clear();
    drain_head_ = 0;
    const std::uint64_t tick = Tick(t);
    if (tick > cur_) cur_ = tick;
  }

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  /// Tombstone marker for cancelled drain entries (never a real slot: slot
  /// ids are dense indices into EventQueue's slot table).
  static constexpr std::uint32_t kDeadSlot = 0xFFFF'FFFF;

  static std::uint64_t Tick(Time t) {
    return static_cast<std::uint64_t>(t) >> kTickShift;
  }
  static bool Before(const SchedEntry& a, const SchedEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  [[nodiscard]] bool DrainLive() const { return drain_head_ < drain_.size(); }

  /// Appends `e` to the bucket its time selects under the current cursor
  /// and records its location. Precondition: within horizon, not behind
  /// the cursor.
  void Place(const SchedEntry& e);
  /// Moves the level-0 bucket `s` into the (empty) drain, sorted.
  void DrainBucket(std::uint32_t s);
  /// Sorts the freshly swapped-in drain by (t, seq). A clean bucket is in
  /// seq (insertion) order, and a level-0 bucket spans exactly one tick, so
  /// a stable counting sort on the sub-tick key suffices; `dirty` (a
  /// swap-remove disturbed the order) or small inputs fall back to
  /// std::sort.
  void SortDrain(bool dirty);
  /// Re-places every entry of bucket `s` at `level` into lower levels after
  /// the cursor entered that bucket's range.
  void CascadeBucket(int level, std::uint32_t s);
  /// Refills an empty drain from the buckets. Precondition: count_ > 0.
  void Refill();
  /// Peek's out-of-line tail: skips drain tombstones and refills.
  [[nodiscard]] const SchedEntry* PeekSlow();

  [[nodiscard]] std::vector<SchedEntry>& Bucket(int level, std::uint32_t s) {
    return buckets_[static_cast<std::uint32_t>(level) * kWheelSlots + s];
  }
  /// Lowest set bit index >= from in the level's occupancy word, or -1.
  [[nodiscard]] int FindSet(int level, std::uint32_t from) const {
    const std::uint64_t bits = bitmap_[level] & (~0ull << from);
    return bits != 0 ? std::countr_zero(bits) : -1;
  }

  std::vector<SlotMeta>* meta_;

  /// kLevels * kWheelSlots contiguous buckets; capacities persist across
  /// reuse, so the steady state allocates nothing.
  std::vector<SchedEntry> buckets_[kLevels * kWheelSlots];
  std::uint64_t bitmap_[kLevels] = {};  // per-level bucket occupancy
  /// Buckets whose insertion order was disturbed by a swap-remove; their
  /// drain pass needs the comparison sort. Cascading a dirty bucket taints
  /// the destinations.
  std::uint64_t dirty_[kLevels] = {};

  // Counting-sort workspace (reused; no steady-state allocation).
  std::vector<std::uint32_t> counts_;
  std::vector<SchedEntry> scratch_;

  /// Level-0 tick cursor: every event in ticks < cur_ has been moved to the
  /// drain (or popped); the bucket at cur_ itself may refill while the
  /// drain is dead and is then rescanned.
  std::uint64_t cur_ = 0;

  /// Sorted run of due entries served by Peek/Pop. Entries before
  /// drain_head_ are consumed; cancelled ones are tombstoned in place.
  std::vector<SchedEntry> drain_;
  std::size_t drain_head_ = 0;

  std::size_t count_ = 0;  // live entries (buckets + drain, minus tombstones)
};

}  // namespace fncc
