#include "sim/event_queue.hpp"

#include <utility>

namespace fncc {

namespace {

constexpr EventId MakeEventId(std::uint32_t slot, std::uint32_t generation) {
  // slot + 1 in the low half keeps 0 reserved for kInvalidEventId.
  return (static_cast<EventId>(generation) << 32) |
         (static_cast<EventId>(slot) + 1);
}

}  // namespace

std::uint32_t EventQueue::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slot_meta_.size());
  slot_meta_.emplace_back();
  slot_actions_.emplace_back();
  return slot;
}

EventId EventQueue::Commit(Time t, std::uint32_t slot) {
  return CommitWith(t, kNativeOrderBit | next_seq_++, slot);
}

EventId EventQueue::CommitWith(Time t, std::uint64_t order,
                               std::uint32_t slot) {
  if (wheel_.Accepts(t)) {
    wheel_.Insert(SchedEntry{t, order, slot});
  } else {
    HeapPush(HeapEntry{t, order, slot});
  }
  return MakeEventId(slot, slot_meta_[slot].generation);
}

bool EventQueue::Cancel(EventId id) {
  const std::uint64_t low = id & 0xFFFF'FFFFu;
  if (low == 0 || low > slot_meta_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(low - 1);
  SlotMeta& meta = slot_meta_[slot];
  if (meta.loc == kLocNone ||
      meta.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // already ran, already cancelled, or slot was reused
  }
  if ((meta.loc & ~kLocIndexMask) == kLocHeapTag) {
    RemoveAt(meta.loc & kLocIndexMask);
  } else {
    wheel_.Remove(slot, meta.loc);
  }
  ReleaseSlot(slot);
  return true;
}

bool EventQueue::Reschedule(EventId id, Time t) {
  const std::uint64_t low = id & 0xFFFF'FFFFu;
  if (low == 0 || low > slot_meta_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(low - 1);
  SlotMeta& meta = slot_meta_[slot];
  if (meta.loc == kLocNone ||
      meta.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false;
  }
  // Extract the timing record, keeping the slot (payload + generation)
  // alive, then re-enter with a fresh sequence number — exactly the order a
  // separate cancel + schedule would have produced.
  if ((meta.loc & ~kLocIndexMask) == kLocHeapTag) {
    RemoveAt(meta.loc & kLocIndexMask);
  } else {
    wheel_.Remove(slot, meta.loc);
  }
  meta.loc = kLocNone;
  const std::uint64_t seq = kNativeOrderBit | next_seq_++;
  if (wheel_.Accepts(t)) {
    wheel_.Insert(SchedEntry{t, seq, slot});
  } else {
    HeapPush(HeapEntry{t, seq, slot});
  }
  return true;
}

EventAction EventQueue::PopNext(Time* t, std::uint64_t* order) {
  assert(!Empty() && "PopNext on empty queue");
  const SchedEntry* w = wheel_.Peek();
  const bool from_wheel =
      w != nullptr &&
      (heap_.empty() || w->t < heap_.front().t ||
       (w->t == heap_.front().t && w->seq < heap_.front().seq));

  std::uint32_t slot;
  if (from_wheel) {
    const SchedEntry e = wheel_.Pop();
    *t = e.t;
    if (order != nullptr) *order = e.seq;
    slot = e.slot;
  } else {
    const HeapEntry top = heap_.front();
    *t = top.t;
    if (order != nullptr) *order = top.seq;
    slot = top.slot;
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDownFromRoot(last);
    // The heap ran ahead of an empty wheel: drag the wheel cursor to now so
    // newly scheduled near events land in the wheel, not the heap.
    if (wheel_.size() == 0) wheel_.AdvanceTo(top.t);
  }
  EventAction action = std::move(slot_actions_[slot]);
  ReleaseSlot(slot);
  return action;
}

void EventQueue::RemoveAt(std::size_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the trailing entry
  Place(pos, last);
  if (pos > 0 && Later(heap_[(pos - 1) / 2], heap_[pos])) {
    SiftUp(pos);
  } else {
    SiftDown(pos);
  }
}

void EventQueue::ReleaseSlot(std::uint32_t slot) {
  slot_actions_[slot] = EventAction();  // drop the payload eagerly
  SlotMeta& meta = slot_meta_[slot];
  ++meta.generation;
  meta.loc = kLocNone;
  free_slots_.push_back(slot);
}

void EventQueue::HeapPush(const HeapEntry& e) {
  heap_.push_back(e);
  slot_meta_[e.slot].loc =
      kLocHeapTag | static_cast<std::uint32_t>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
}

void EventQueue::SiftUp(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Later(heap_[parent], e)) break;
    Place(i, heap_[parent]);
    i = parent;
  }
  Place(i, e);
}

void EventQueue::SiftDownFromRoot(const HeapEntry& e) {
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  // Descend along the min-child path all the way to a leaf.
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    const std::size_t c = (r < n && Later(heap_[l], heap_[r])) ? r : l;
    Place(i, heap_[c]);
    i = c;
  }
  // Bubble e back up from the leaf hole to its resting place.
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Later(heap_[parent], e)) break;
    Place(i, heap_[parent]);
    i = parent;
  }
  Place(i, e);
}

void EventQueue::SiftDown(std::size_t i) {
  const HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    // Compare children against the element being sunk, tracking which of
    // the three belongs at position i.
    const HeapEntry* best = &e;
    if (l < n && Later(*best, heap_[l])) {
      smallest = l;
      best = &heap_[l];
    }
    if (r < n && Later(*best, heap_[r])) {
      smallest = r;
      best = &heap_[r];
    }
    if (smallest == i) break;
    Place(i, heap_[smallest]);
    i = smallest;
  }
  Place(i, e);
}

}  // namespace fncc
