#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace fncc {

EventId EventQueue::Schedule(Time t, Callback cb) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{t, id, std::move(cb)});
  SiftUp(heap_.size() - 1);
  pending_.insert(id);
  ++live_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  --live_;
  return true;
}

Time EventQueue::NextTime() {
  if (live_ == 0) return kTimeInfinity;
  DropCancelledTop();
  return heap_[0].t;
}

EventQueue::Callback EventQueue::PopNext(Time* t) {
  DropCancelledTop();
  assert(!heap_.empty() && "PopNext on empty queue");
  Entry top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  pending_.erase(top.id);
  --live_;
  *t = top.t;
  DropCancelledTop();  // keep top clean so NextTime() stays O(1)
  return std::move(top.cb);
}

void EventQueue::DropCancelledTop() {
  while (!heap_.empty() && cancelled_.contains(heap_[0].id)) {
    cancelled_.erase(heap_[0].id);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  }
}

void EventQueue::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && Later(heap_[smallest], heap_[l])) smallest = l;
    if (r < n && Later(heap_[smallest], heap_[r])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace fncc
