// A fixed-capacity inline vector used for per-packet data (e.g. INT stacks)
// where heap allocation per hop would dominate simulator cost.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>

namespace fncc {

/// Fixed-capacity vector with inline storage. Elements must be trivially
/// destructible (enforced) because clear() does not run destructors.
template <typename T, std::size_t N>
class StaticVector {
  static_assert(std::is_trivially_destructible_v<T>,
                "StaticVector only supports trivially destructible types");

 public:
  StaticVector() = default;
  StaticVector(std::initializer_list<T> init) {
    assert(init.size() <= N);
    for (const T& v : init) push_back(v);
  }

  void push_back(const T& v) {
    assert(size_ < N && "StaticVector overflow");
    data_[size_++] = v;
  }

  /// Appends a default-constructed element and returns a reference to it.
  T& emplace_back() {
    assert(size_ < N && "StaticVector overflow");
    data_[size_] = T{};
    return data_[size_++];
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == N; }
  static constexpr std::size_t capacity() { return N; }

  T* begin() { return data_.data(); }
  T* end() { return data_.data() + size_; }
  const T* begin() const { return data_.data(); }
  const T* end() const { return data_.data() + size_; }

  friend bool operator==(const StaticVector& a, const StaticVector& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  std::array<T, N> data_{};
  std::size_t size_ = 0;
};

}  // namespace fncc
