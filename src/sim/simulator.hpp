// The discrete-event simulation kernel: a clock, an event queue, and the
// per-run packet arena.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace fncc {

class PacketPool;  // net/packet_pool.hpp; owned here as an opaque arena

/// Single-threaded discrete-event simulator. All model components hold a
/// non-owning pointer to the Simulator that drives them; the Simulator is
/// created first and outlives the model (typically stack-owned by a
/// scenario runner).
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The per-run packet arena. Every packet a model component allocates
  /// comes from here so steady-state traffic is heap-allocation-free and
  /// all packet storage dies with the run. Declared before (destroyed
  /// after) the event queue: callbacks still holding PacketPtrs at teardown
  /// return them to a live pool.
  [[nodiscard]] PacketPool& packet_pool() { return *pool_; }

  /// The Simulator whose pool MakePacket()/ClonePacket() implicitly target:
  /// the sole Simulator alive on the calling thread, or nullptr when zero
  /// or several are alive (several = ambiguous; the implicit path then
  /// debug-asserts and falls back to the thread-default pool). Each
  /// Simulator registers itself per-thread at construction, so it must be
  /// constructed and destroyed on the same thread — which parallel sweeps
  /// satisfy by building one Simulator per job, entirely inside the job.
  [[nodiscard]] static Simulator* CurrentOnThread();

  /// Number of Simulators currently alive on the calling thread.
  [[nodiscard]] static int LiveOnThread();

  /// Current simulation time.
  [[nodiscard]] Time Now() const { return now_; }

  /// Schedules `cb` to run `delay` from now. Negative delays clamp to now.
  EventId Schedule(Time delay, EventQueue::Callback cb) {
    return queue_.Schedule(now_ + (delay > 0 ? delay : 0), std::move(cb));
  }

  /// Schedules a typed (closure-free) event `delay` from now — the packet
  /// pipeline's zero-lambda dispatch path.
  EventId Schedule(Time delay, const TypedEvent& ev) {
    return queue_.Schedule(now_ + (delay > 0 ? delay : 0), ev);
  }

  /// Schedules `cb` at absolute time `t` (clamped to now).
  EventId ScheduleAt(Time t, EventQueue::Callback cb) {
    return queue_.Schedule(t > now_ ? t : now_, std::move(cb));
  }

  /// Typed-event variant of ScheduleAt.
  EventId ScheduleAt(Time t, const TypedEvent& ev) {
    return queue_.Schedule(t > now_ ? t : now_, ev);
  }

  /// Cancels a pending event; returns false if it already ran.
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Fused cancel + schedule (rearm fast path): moves a pending event to
  /// `delay` from now, reusing its slot and payload. Returns `id` (still
  /// valid) on success, or kInvalidEventId if the event already ran or was
  /// cancelled — the caller then schedules afresh with its payload.
  EventId Reschedule(EventId id, Time delay) {
    return queue_.Reschedule(id, now_ + (delay > 0 ? delay : 0))
               ? id
               : kInvalidEventId;
  }

  /// Runs until the event queue drains or Stop() is called.
  void Run();

  /// Runs events with timestamp <= t, then sets the clock to exactly t.
  void RunUntil(Time t);

  /// Stops Run()/RunUntil() after the current event returns.
  void Stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  [[nodiscard]] std::size_t events_pending() { return queue_.size(); }

  /// Upper bound on delivery_batch (sizes the drain paths' stack arrays).
  static constexpr int kMaxDeliveryBatch = 64;

  /// Egress delivery lookahead: how many in-flight packets a port keeps in
  /// its delivery chain for batched destination prefetch (see
  /// net/egress_port.hpp). 1 = unbatched per-packet delivery. Purely a
  /// cache-warming knob: every packet is still delivered by its own event
  /// at its own (t,seq), so results are bit-identical across settings.
  [[nodiscard]] int delivery_batch() const { return delivery_batch_; }
  void set_delivery_batch(int batch) {
    delivery_batch_ =
        batch < 1 ? 1 : (batch > kMaxDeliveryBatch ? kMaxDeliveryBatch : batch);
  }

 private:
  // Destruction runs bottom-up: queue_ (and the packets its callbacks hold)
  // goes before pool_. Keep pool_ first.
  std::unique_ptr<PacketPool> pool_;
  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  int delivery_batch_ = 16;
};

}  // namespace fncc
