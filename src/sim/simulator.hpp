// The discrete-event simulation kernel: a clock, an event queue, and the
// per-run packet arena — multiplied across independent event "lanes" when
// the fabric is partitioned into parallel domains (Partition()).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace fncc {

class PacketPool;  // net/packet_pool.hpp; owned here as an opaque arena

/// Discrete-event simulator. All model components hold a non-owning pointer
/// to the Simulator that drives them; the Simulator is created first and
/// outlives the model (typically stack-owned by a scenario runner).
///
/// By default the simulator is a single event lane — one queue, one clock,
/// one arena, single-threaded, exactly the classic kernel. Partition(n)
/// splits it into n lanes for conservative-PDES execution: each lane owns
/// its slice of the fabric (assigned at build time via ActiveLaneScope),
/// lanes advance in bounded time windows of the cross-lane lookahead
/// (min link propagation delay, set by Network::SealDomains), and
/// cross-lane packet handoffs buffer in per-port mailboxes drained at
/// window barriers. Order words (see event_queue.hpp) make pop order — and
/// every simulation output — bit-identical at any lane count, whether
/// windows run serially (RunUntil here) or on a thread pool
/// (exec/DomainScheduler).
class Simulator {
 public:
  /// One event domain's execution state. Unpartitioned simulators have
  /// exactly one lane and every fast path below compiles to the classic
  /// single-queue code plus one predicted branch.
  struct Lane {
    EventQueue queue;
    Time now = 0;
    std::uint64_t events_processed = 0;
    /// Order word of the event currently executing: together with `now` it
    /// positions any side effect of that event — e.g. an FCT record — in
    /// the global (t, order) sequence (see CurrentOrderKey).
    std::uint64_t cur_order = 0;
    PacketPool* pool = nullptr;  // owned by the Simulator's pools_
    int id = 0;
  };

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The packet arena of the calling thread's active lane. Every packet a
  /// model component allocates comes from here so steady-state traffic is
  /// heap-allocation-free and all packet storage dies with the run. Pools
  /// are declared before (destroyed after) the lanes: callbacks still
  /// holding PacketPtrs at teardown return them to a live pool.
  [[nodiscard]] PacketPool& packet_pool() { return *lane().pool; }

  /// The Simulator whose pool MakePacket()/ClonePacket() implicitly target:
  /// the thread's active-lane Simulator (set by ActiveLaneScope, covering
  /// partitioned setup and window execution on worker threads), else the
  /// sole Simulator alive on the calling thread, or nullptr when zero or
  /// several are alive (several = ambiguous; the implicit path then
  /// debug-asserts and falls back to the thread-default pool). Each
  /// Simulator registers itself per-thread at construction, so it must be
  /// constructed and destroyed on the same thread — which parallel sweeps
  /// satisfy by building one Simulator per job, entirely inside the job.
  [[nodiscard]] static Simulator* CurrentOnThread();

  /// Number of Simulators currently alive on the calling thread.
  [[nodiscard]] static int LiveOnThread();

  /// Current simulation time (of the calling thread's active lane).
  [[nodiscard]] Time Now() const { return lane().now; }

  /// Schedules `cb` to run `delay` from now. Negative delays clamp to now.
  EventId Schedule(Time delay, EventQueue::Callback cb) {
    Lane& l = lane();
    return l.queue.Schedule(l.now + (delay > 0 ? delay : 0), std::move(cb));
  }

  /// Schedules a typed (closure-free) event `delay` from now — the packet
  /// pipeline's zero-lambda dispatch path.
  EventId Schedule(Time delay, const TypedEvent& ev) {
    Lane& l = lane();
    return l.queue.Schedule(l.now + (delay > 0 ? delay : 0), ev);
  }

  /// Schedules `cb` at absolute time `t` (clamped to now).
  EventId ScheduleAt(Time t, EventQueue::Callback cb) {
    Lane& l = lane();
    return l.queue.Schedule(t > l.now ? t : l.now, std::move(cb));
  }

  /// Typed-event variant of ScheduleAt.
  EventId ScheduleAt(Time t, const TypedEvent& ev) {
    Lane& l = lane();
    return l.queue.Schedule(t > l.now ? t : l.now, ev);
  }

  /// Schedules a typed event `delay` from now with an explicit
  /// partition-invariant order word instead of a minted native one — the
  /// link-delivery path (see kNativeOrderBit in event_queue.hpp).
  EventId ScheduleOrdered(Time delay, std::uint64_t order,
                          const TypedEvent& ev) {
    Lane& l = lane();
    return l.queue.ScheduleOrdered(l.now + (delay > 0 ? delay : 0), order, ev);
  }

  /// Absolute-time variant of ScheduleOrdered (mailbox drains).
  EventId ScheduleAtOrdered(Time t, std::uint64_t order, const TypedEvent& ev) {
    Lane& l = lane();
    return l.queue.ScheduleOrdered(t > l.now ? t : l.now, order, ev);
  }

  /// Cancels a pending event; returns false if it already ran. Only valid
  /// from the lane the event was scheduled in.
  bool Cancel(EventId id) { return lane().queue.Cancel(id); }

  /// Fused cancel + schedule (rearm fast path): moves a pending event to
  /// `delay` from now, reusing its slot and payload. Returns `id` (still
  /// valid) on success, or kInvalidEventId if the event already ran or was
  /// cancelled — the caller then schedules afresh with its payload.
  EventId Reschedule(EventId id, Time delay) {
    Lane& l = lane();
    return l.queue.Reschedule(id, l.now + (delay > 0 ? delay : 0))
               ? id
               : kInvalidEventId;
  }

  /// Runs until the event queues drain or Stop() is called. Partitioned
  /// simulators advance window-by-window (serially; see exec/DomainScheduler
  /// for the threaded driver) and do not settle clocks.
  void Run();

  /// Runs events with timestamp <= t, then sets the clock(s) to exactly t.
  void RunUntil(Time t);

  /// Stops Run()/RunUntil() after the current event returns — or, in a
  /// partitioned run, at the end of the current window (the whole window
  /// always completes, so where a run stops is deterministic).
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t events_processed() const {
    std::uint64_t n = 0;
    for (const Lane* l : lanes_) n += l->events_processed;
    return n;
  }
  /// Pending work across all lanes: queued events plus cross-lane handoffs
  /// still buffered in port outboxes (each becomes an event at the next
  /// window's drain — callers polling for quiescence between RunUntil
  /// calls must see them).
  [[nodiscard]] std::size_t events_pending() const {
    std::size_t n = 0;
    for (const Lane* l : lanes_) n += l->queue.size();
    for (const auto& lane_boxes : mailboxes_) {
      for (const Mailbox& m : lane_boxes) n += m.pending(m.ctx);
    }
    return n;
  }

  /// Packet-arena totals summed over all lanes. NOTE: unlike every physical
  /// counter, these are lane-partition-dependent (cross-lane handoffs
  /// re-acquire in the destination arena), so they are comparable across
  /// thread counts at a fixed partitioning but not across lane counts.
  [[nodiscard]] std::uint64_t pool_total_created() const;
  [[nodiscard]] std::uint64_t pool_acquires() const;

  /// Upper bound on delivery_batch (sizes the drain paths' stack arrays).
  static constexpr int kMaxDeliveryBatch = 64;

  /// Egress delivery lookahead: how many in-flight packets a port keeps in
  /// its delivery chain for batched destination prefetch (see
  /// net/egress_port.hpp). 1 = unbatched per-packet delivery. Purely a
  /// cache-warming knob: every packet is still delivered by its own event
  /// at its own (t,seq), so results are bit-identical across settings.
  [[nodiscard]] int delivery_batch() const { return delivery_batch_; }
  void set_delivery_batch(int batch) {
    delivery_batch_ =
        batch < 1 ? 1 : (batch > kMaxDeliveryBatch ? kMaxDeliveryBatch : batch);
  }

  // ---- Lane partitioning (intra-point conservative PDES) -----------------

  /// Splits the simulator into `lanes` independent event domains. Must be
  /// called before anything is scheduled — i.e. before the fabric is built,
  /// so construction-time events (switch timers) land in their owner's
  /// lane. Lane 0 adopts the base state; lanes 1..n-1 get fresh queues and
  /// arenas. Afterwards the constructing thread's active lane is lane 0, so
  /// setup code outside any ActiveLaneScope still targets lane 0.
  void Partition(int lanes);

  [[nodiscard]] int num_lanes() const {
    return static_cast<int>(lanes_.size());
  }
  [[nodiscard]] bool partitioned() const { return multi_; }
  [[nodiscard]] int ActiveLaneId() const { return lane().id; }

  /// (time, order word) of the event currently executing in the active
  /// lane — the canonical global position used to merge per-lane record
  /// streams (e.g. FCT completions) independently of the partitioning.
  struct OrderKey {
    Time t = 0;
    std::uint64_t order = 0;
  };
  [[nodiscard]] OrderKey CurrentOrderKey() const {
    const Lane& l = lane();
    return OrderKey{l.now, l.cur_order};
  }

  /// RAII: makes lane `id` of `sim` the calling thread's active lane. All
  /// Schedule/Now/packet_pool calls on that simulator route to it, and
  /// CurrentOnThread() resolves to `sim`. Used during setup (constructing a
  /// node inside its domain) and by the window runner around each lane's
  /// event batch.
  class ActiveLaneScope {
   public:
    ActiveLaneScope(Simulator* sim, int id)
        : prev_lane_(t_active_lane_), prev_sim_(t_active_sim_) {
      t_active_lane_ = sim->lanes_[static_cast<std::size_t>(id)];
      t_active_sim_ = sim;
    }
    ~ActiveLaneScope() {
      t_active_lane_ = prev_lane_;
      t_active_sim_ = prev_sim_;
    }
    ActiveLaneScope(const ActiveLaneScope&) = delete;
    ActiveLaneScope& operator=(const ActiveLaneScope&) = delete;

   private:
    Lane* prev_lane_;
    Simulator* prev_sim_;
  };

  /// Mints the order-word base for the next directed link: the edge index
  /// in bits [62:32] (bit 63 clear = delivery). Edges are minted in
  /// EgressPort::Connect order, which is topology build order — fixed and
  /// independent of the partitioning, so a given wire always produces the
  /// same words.
  [[nodiscard]] std::uint64_t MintEdgeOrderBase() {
    assert(next_edge_ < (1u << 30) && "directed-edge index overflow");
    return static_cast<std::uint64_t>(next_edge_++) << 32;
  }

  /// Conservative-PDES window width: min propagation delay over cross-lane
  /// links, set by Network::SealDomains after wiring. kTimeInfinity (the
  /// default) means no cross-lane links — each window runs to the bound.
  void set_domain_lookahead(Time l) { lookahead_ = l; }
  [[nodiscard]] Time domain_lookahead() const { return lookahead_; }

  /// Registers a cross-lane mailbox: `drain(ctx)` runs under lane
  /// `dst_lane`'s scope at every window barrier and moves the *sealed*
  /// outbox buffer's handoffs into that lane's queue
  /// (EgressPort::DrainHandoffs). `min_time(ctx)` reports the earliest
  /// buffered delivery time (kTimeInfinity if none) so NextEventTime can
  /// bound the next window by handoffs that are not yet in any queue;
  /// `pending(ctx)` reports the buffered handoff count for
  /// events_pending(). Register after wiring completes — `ctx` must be a
  /// stable pointer.
  using MailboxDrainFn = void (*)(void* ctx);
  using MailboxMinTimeFn = Time (*)(void* ctx);
  using MailboxPendingFn = std::size_t (*)(void* ctx);
  void RegisterMailbox(int dst_lane, void* ctx, MailboxDrainFn drain,
                       MailboxMinTimeFn min_time, MailboxPendingFn pending);

  // Window protocol primitives, shared by the serial multi-lane loop here
  // and the persistent-worker exec/DomainScheduler. The run and drain
  // phases are fused behind one barrier per window by double-buffering the
  // port outboxes: sends of window w append to the active buffer, the
  // phase flips at the window's end barrier, and window w+1 drains the
  // now-sealed buffer before running its events — no lane ever reads a
  // buffer another lane is still appending to. Sequence per window:
  // [prologue, single-threaded] flip phase, pick close; [work, per lane]
  // DrainLaneMailboxes then RunLaneWindow(close); barrier.
  /// Earliest pending work time across all lanes: queued events plus
  /// buffered cross-lane handoffs (which window w+1 injects before running,
  /// so they bound its start exactly as queued events do). kTimeInfinity
  /// if fully drained.
  [[nodiscard]] Time NextEventTime();
  /// Exclusive upper bound of the window starting at `start`, bounded
  /// inclusively by `limit`: min(start + lookahead, limit + 1).
  [[nodiscard]] Time WindowClose(Time start, Time limit) const;
  /// Runs lane `id`'s events with t < close under its scope. Safe to call
  /// concurrently for distinct lanes.
  void RunLaneWindow(int id, Time close);
  /// Runs lane `id`'s registered mailbox drains under its scope, injecting
  /// the sealed (previous-phase) outbox buffers. Safe for distinct lanes
  /// concurrently — and, thanks to the double buffering, safe to run while
  /// other lanes execute their windows (they append to the active phase).
  void DrainLaneMailboxes(int id);
  /// Advances every lane clock to `t` (RunUntil semantics); no-op if
  /// stopped.
  void SettleLanes(Time t);
  void ClearStop() { stopped_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

  /// Outbox double-buffer phase: cross-lane sends append to buffer
  /// [outbox_phase()], drains read buffer [outbox_phase() ^ 1]. Flipped
  /// once per window inside the single-threaded window prologue (the
  /// barrier completion, or the serial loop's end-of-window step) — the
  /// barrier's ordering is what publishes the flip to every lane.
  [[nodiscard]] int outbox_phase() const { return outbox_phase_; }
  void FlipOutboxPhase() { outbox_phase_ ^= 1; }

  /// Count of PDES windows executed (serial and threaded engines count
  /// identically: the window start sequence is a deterministic function of
  /// the event stream). Deterministic at a fixed partitioning; feeds the
  /// windows/sec bench counter and `output.pdes_stats`.
  [[nodiscard]] std::uint64_t windows_executed() const {
    return windows_executed_;
  }
  /// Called once per window by the driving engine's prologue.
  void NoteWindowExecuted() { ++windows_executed_; }

  /// Per-lane slice of events_processed() — the telemetry layer snapshots
  /// it each window to attribute work to lanes.
  [[nodiscard]] std::uint64_t lane_events_processed(int id) const {
    return lanes_[static_cast<std::size_t>(id)]->events_processed;
  }

 private:
  void RunMulti(Time bound, bool settle);

  [[nodiscard]] Lane& lane() {
    assert(!multi_ || t_active_lane_ != nullptr);
    return multi_ ? *t_active_lane_ : lane0_;
  }
  [[nodiscard]] const Lane& lane() const {
    assert(!multi_ || t_active_lane_ != nullptr);
    return multi_ ? *t_active_lane_ : lane0_;
  }

  // Destruction runs bottom-up: lanes (queues, and the packets their
  // callbacks hold) go before the pools. Keep pools_ first.
  std::vector<std::unique_ptr<PacketPool>> pools_;
  Lane lane0_;  // by value: the unpartitioned hot path needs no indirection
  std::vector<std::unique_ptr<Lane>> extra_lanes_;
  std::vector<Lane*> lanes_;  // all lanes: {&lane0_, extra_lanes_...}
  bool multi_ = false;
  std::atomic<bool> stopped_{false};
  int delivery_batch_ = 16;
  Time lookahead_ = kTimeInfinity;
  std::uint32_t next_edge_ = 0;

  struct Mailbox {
    void* ctx;
    MailboxDrainFn drain;
    MailboxMinTimeFn min_time;
    MailboxPendingFn pending;
  };
  std::vector<std::vector<Mailbox>> mailboxes_;  // indexed by dst lane
  int outbox_phase_ = 0;
  std::uint64_t windows_executed_ = 0;

  /// The calling thread's active lane / simulator (see ActiveLaneScope).
  /// Only consulted when multi_ — unpartitioned simulators never touch it.
  inline static thread_local Lane* t_active_lane_ = nullptr;
  inline static thread_local Simulator* t_active_sim_ = nullptr;
};

}  // namespace fncc
