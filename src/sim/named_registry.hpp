// A small name -> entry map shared by the topology and workload
// registries: duplicate-rejecting registration, described entries, sorted
// name listing, and uniform "unknown <kind> '<name>'" errors.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fncc {

/// Comma-joins names for "(known: a, b, c)" error messages.
inline std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

template <typename Entry>
class NamedRegistry {
 public:
  /// `kind` names the registry in error messages ("topology", "workload").
  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Throws std::invalid_argument on a duplicate name.
  void Register(const std::string& name, const std::string& description,
                Entry entry) {
    const auto [it, inserted] =
        items_.emplace(name, Item{description, std::move(entry)});
    (void)it;
    if (!inserted) {
      throw std::invalid_argument(kind_ + " '" + name +
                                  "' already registered");
    }
  }

  [[nodiscard]] bool Contains(const std::string& name) const {
    return items_.count(name) != 0;
  }

  /// Throws std::invalid_argument for an unknown name.
  [[nodiscard]] const Entry& At(const std::string& name) const {
    const auto it = items_.find(name);
    if (it == items_.end()) {
      throw std::invalid_argument("unknown " + kind_ + " '" + name + "'");
    }
    return it->second.entry;
  }

  /// Registered names, sorted (std::map order).
  [[nodiscard]] std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(items_.size());
    for (const auto& [name, item] : items_) names.push_back(name);
    return names;
  }

  /// One-line description, or "" for an unknown name.
  [[nodiscard]] std::string Describe(const std::string& name) const {
    const auto it = items_.find(name);
    return it == items_.end() ? std::string() : it->second.description;
  }

 private:
  struct Item {
    std::string description;
    Entry entry;
  };

  std::string kind_;
  std::map<std::string, Item> items_;
};

}  // namespace fncc
