file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_hadoop.dir/bench/bench_fig15_hadoop.cpp.o"
  "CMakeFiles/bench_fig15_hadoop.dir/bench/bench_fig15_hadoop.cpp.o.d"
  "bench_fig15_hadoop"
  "bench_fig15_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
