# Empty compiler generated dependencies file for fncc_sim_tests.
# This may be replaced when dependencies are built.
