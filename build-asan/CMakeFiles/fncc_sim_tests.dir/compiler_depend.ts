# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fncc_sim_tests.
