file(REMOVE_RECURSE
  "CMakeFiles/fncc_sim_tests.dir/tests/sim/event_queue_test.cpp.o"
  "CMakeFiles/fncc_sim_tests.dir/tests/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/fncc_sim_tests.dir/tests/sim/simulator_test.cpp.o"
  "CMakeFiles/fncc_sim_tests.dir/tests/sim/simulator_test.cpp.o.d"
  "CMakeFiles/fncc_sim_tests.dir/tests/sim/unique_function_test.cpp.o"
  "CMakeFiles/fncc_sim_tests.dir/tests/sim/unique_function_test.cpp.o.d"
  "fncc_sim_tests"
  "fncc_sim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
