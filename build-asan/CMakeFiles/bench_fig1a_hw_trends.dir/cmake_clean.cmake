file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1a_hw_trends.dir/bench/bench_fig1a_hw_trends.cpp.o"
  "CMakeFiles/bench_fig1a_hw_trends.dir/bench/bench_fig1a_hw_trends.cpp.o.d"
  "bench_fig1a_hw_trends"
  "bench_fig1a_hw_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1a_hw_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
