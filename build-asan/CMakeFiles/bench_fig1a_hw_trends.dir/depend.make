# Empty dependencies file for bench_fig1a_hw_trends.
# This may be replaced when dependencies are built.
