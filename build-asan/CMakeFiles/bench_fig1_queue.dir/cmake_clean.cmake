file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_queue.dir/bench/bench_fig1_queue.cpp.o"
  "CMakeFiles/bench_fig1_queue.dir/bench/bench_fig1_queue.cpp.o.d"
  "bench_fig1_queue"
  "bench_fig1_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
