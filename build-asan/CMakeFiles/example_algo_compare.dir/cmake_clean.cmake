file(REMOVE_RECURSE
  "CMakeFiles/example_algo_compare.dir/examples/algo_compare.cpp.o"
  "CMakeFiles/example_algo_compare.dir/examples/algo_compare.cpp.o.d"
  "example_algo_compare"
  "example_algo_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_algo_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
