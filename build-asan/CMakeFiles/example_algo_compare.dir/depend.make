# Empty dependencies file for example_algo_compare.
# This may be replaced when dependencies are built.
