file(REMOVE_RECURSE
  "CMakeFiles/fncc_stats_tests.dir/tests/stats/csv_test.cpp.o"
  "CMakeFiles/fncc_stats_tests.dir/tests/stats/csv_test.cpp.o.d"
  "CMakeFiles/fncc_stats_tests.dir/tests/stats/stats_test.cpp.o"
  "CMakeFiles/fncc_stats_tests.dir/tests/stats/stats_test.cpp.o.d"
  "fncc_stats_tests"
  "fncc_stats_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
