# Empty dependencies file for fncc_stats_tests.
# This may be replaced when dependencies are built.
