file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_theory.dir/bench/bench_fig12_theory.cpp.o"
  "CMakeFiles/bench_fig12_theory.dir/bench/bench_fig12_theory.cpp.o.d"
  "bench_fig12_theory"
  "bench_fig12_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
