# Empty dependencies file for bench_fig12_theory.
# This may be replaced when dependencies are built.
