file(REMOVE_RECURSE
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/dcqcn_test.cpp.o"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/dcqcn_test.cpp.o.d"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/fncc_test.cpp.o"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/fncc_test.cpp.o.d"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/hpcc_test.cpp.o"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/hpcc_test.cpp.o.d"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/rocc_timely_test.cpp.o"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/rocc_timely_test.cpp.o.d"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/swift_test.cpp.o"
  "CMakeFiles/fncc_cc_tests.dir/tests/cc/swift_test.cpp.o.d"
  "fncc_cc_tests"
  "fncc_cc_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_cc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
