
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cc/dcqcn_test.cpp" "CMakeFiles/fncc_cc_tests.dir/tests/cc/dcqcn_test.cpp.o" "gcc" "CMakeFiles/fncc_cc_tests.dir/tests/cc/dcqcn_test.cpp.o.d"
  "/root/repo/tests/cc/fncc_test.cpp" "CMakeFiles/fncc_cc_tests.dir/tests/cc/fncc_test.cpp.o" "gcc" "CMakeFiles/fncc_cc_tests.dir/tests/cc/fncc_test.cpp.o.d"
  "/root/repo/tests/cc/hpcc_test.cpp" "CMakeFiles/fncc_cc_tests.dir/tests/cc/hpcc_test.cpp.o" "gcc" "CMakeFiles/fncc_cc_tests.dir/tests/cc/hpcc_test.cpp.o.d"
  "/root/repo/tests/cc/rocc_timely_test.cpp" "CMakeFiles/fncc_cc_tests.dir/tests/cc/rocc_timely_test.cpp.o" "gcc" "CMakeFiles/fncc_cc_tests.dir/tests/cc/rocc_timely_test.cpp.o.d"
  "/root/repo/tests/cc/swift_test.cpp" "CMakeFiles/fncc_cc_tests.dir/tests/cc/swift_test.cpp.o" "gcc" "CMakeFiles/fncc_cc_tests.dir/tests/cc/swift_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/fncc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
