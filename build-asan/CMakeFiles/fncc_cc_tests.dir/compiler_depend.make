# Empty compiler generated dependencies file for fncc_cc_tests.
# This may be replaced when dependencies are built.
