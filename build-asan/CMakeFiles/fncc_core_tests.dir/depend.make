# Empty dependencies file for fncc_core_tests.
# This may be replaced when dependencies are built.
