file(REMOVE_RECURSE
  "CMakeFiles/fncc_core_tests.dir/tests/core/ack_format_test.cpp.o"
  "CMakeFiles/fncc_core_tests.dir/tests/core/ack_format_test.cpp.o.d"
  "CMakeFiles/fncc_core_tests.dir/tests/core/notification_model_test.cpp.o"
  "CMakeFiles/fncc_core_tests.dir/tests/core/notification_model_test.cpp.o.d"
  "fncc_core_tests"
  "fncc_core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
