file(REMOVE_RECURSE
  "CMakeFiles/fncc_workload_tests.dir/tests/workload/workload_test.cpp.o"
  "CMakeFiles/fncc_workload_tests.dir/tests/workload/workload_test.cpp.o.d"
  "fncc_workload_tests"
  "fncc_workload_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
