# Empty compiler generated dependencies file for fncc_workload_tests.
# This may be replaced when dependencies are built.
