file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_response.dir/bench/bench_fig9_response.cpp.o"
  "CMakeFiles/bench_fig9_response.dir/bench/bench_fig9_response.cpp.o.d"
  "bench_fig9_response"
  "bench_fig9_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
