file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_hops.dir/bench/bench_fig13_hops.cpp.o"
  "CMakeFiles/bench_fig13_hops.dir/bench/bench_fig13_hops.cpp.o.d"
  "bench_fig13_hops"
  "bench_fig13_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
