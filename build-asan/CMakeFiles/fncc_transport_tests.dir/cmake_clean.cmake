file(REMOVE_RECURSE
  "CMakeFiles/fncc_transport_tests.dir/tests/transport/host_edge_test.cpp.o"
  "CMakeFiles/fncc_transport_tests.dir/tests/transport/host_edge_test.cpp.o.d"
  "CMakeFiles/fncc_transport_tests.dir/tests/transport/transport_test.cpp.o"
  "CMakeFiles/fncc_transport_tests.dir/tests/transport/transport_test.cpp.o.d"
  "fncc_transport_tests"
  "fncc_transport_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_transport_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
