# Empty compiler generated dependencies file for fncc_transport_tests.
# This may be replaced when dependencies are built.
