# Empty dependencies file for example_parking_lot.
# This may be replaced when dependencies are built.
