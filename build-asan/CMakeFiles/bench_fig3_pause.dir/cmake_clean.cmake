file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pause.dir/bench/bench_fig3_pause.cpp.o"
  "CMakeFiles/bench_fig3_pause.dir/bench/bench_fig3_pause.cpp.o.d"
  "bench_fig3_pause"
  "bench_fig3_pause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
