file(REMOVE_RECURSE
  "CMakeFiles/example_fat_tree_fct.dir/examples/fat_tree_fct.cpp.o"
  "CMakeFiles/example_fat_tree_fct.dir/examples/fat_tree_fct.cpp.o.d"
  "example_fat_tree_fct"
  "example_fat_tree_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fat_tree_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
