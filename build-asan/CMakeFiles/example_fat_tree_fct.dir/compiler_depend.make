# Empty compiler generated dependencies file for example_fat_tree_fct.
# This may be replaced when dependencies are built.
