file(REMOVE_RECURSE
  "CMakeFiles/fncc_integration_tests.dir/tests/integration/incast_lhcs_test.cpp.o"
  "CMakeFiles/fncc_integration_tests.dir/tests/integration/incast_lhcs_test.cpp.o.d"
  "CMakeFiles/fncc_integration_tests.dir/tests/integration/integration_test.cpp.o"
  "CMakeFiles/fncc_integration_tests.dir/tests/integration/integration_test.cpp.o.d"
  "CMakeFiles/fncc_integration_tests.dir/tests/integration/path_symmetry_test.cpp.o"
  "CMakeFiles/fncc_integration_tests.dir/tests/integration/path_symmetry_test.cpp.o.d"
  "CMakeFiles/fncc_integration_tests.dir/tests/integration/property_test.cpp.o"
  "CMakeFiles/fncc_integration_tests.dir/tests/integration/property_test.cpp.o.d"
  "fncc_integration_tests"
  "fncc_integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
