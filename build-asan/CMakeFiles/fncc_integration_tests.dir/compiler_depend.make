# Empty compiler generated dependencies file for fncc_integration_tests.
# This may be replaced when dependencies are built.
