# Empty dependencies file for bench_fig13e_fairness.
# This may be replaced when dependencies are built.
