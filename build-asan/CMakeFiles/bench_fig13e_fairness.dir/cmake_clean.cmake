file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13e_fairness.dir/bench/bench_fig13e_fairness.cpp.o"
  "CMakeFiles/bench_fig13e_fairness.dir/bench/bench_fig13e_fairness.cpp.o.d"
  "bench_fig13e_fairness"
  "bench_fig13e_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13e_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
