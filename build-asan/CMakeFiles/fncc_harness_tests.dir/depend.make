# Empty dependencies file for fncc_harness_tests.
# This may be replaced when dependencies are built.
