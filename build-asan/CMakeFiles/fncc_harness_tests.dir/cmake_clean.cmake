file(REMOVE_RECURSE
  "CMakeFiles/fncc_harness_tests.dir/tests/harness/harness_test.cpp.o"
  "CMakeFiles/fncc_harness_tests.dir/tests/harness/harness_test.cpp.o.d"
  "fncc_harness_tests"
  "fncc_harness_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_harness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
