file(REMOVE_RECURSE
  "libfncc_core.a"
)
