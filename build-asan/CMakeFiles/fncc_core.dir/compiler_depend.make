# Empty compiler generated dependencies file for fncc_core.
# This may be replaced when dependencies are built.
