
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/cc_algorithm.cpp" "CMakeFiles/fncc_core.dir/src/cc/cc_algorithm.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/cc/cc_algorithm.cpp.o.d"
  "/root/repo/src/cc/dcqcn.cpp" "CMakeFiles/fncc_core.dir/src/cc/dcqcn.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/cc/dcqcn.cpp.o.d"
  "/root/repo/src/cc/hpcc.cpp" "CMakeFiles/fncc_core.dir/src/cc/hpcc.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/cc/hpcc.cpp.o.d"
  "/root/repo/src/cc/rocc.cpp" "CMakeFiles/fncc_core.dir/src/cc/rocc.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/cc/rocc.cpp.o.d"
  "/root/repo/src/cc/swift.cpp" "CMakeFiles/fncc_core.dir/src/cc/swift.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/cc/swift.cpp.o.d"
  "/root/repo/src/cc/timely.cpp" "CMakeFiles/fncc_core.dir/src/cc/timely.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/cc/timely.cpp.o.d"
  "/root/repo/src/core/ack_format.cpp" "CMakeFiles/fncc_core.dir/src/core/ack_format.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/core/ack_format.cpp.o.d"
  "/root/repo/src/core/cc_factory.cpp" "CMakeFiles/fncc_core.dir/src/core/cc_factory.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/core/cc_factory.cpp.o.d"
  "/root/repo/src/core/fncc.cpp" "CMakeFiles/fncc_core.dir/src/core/fncc.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/core/fncc.cpp.o.d"
  "/root/repo/src/core/notification_model.cpp" "CMakeFiles/fncc_core.dir/src/core/notification_model.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/core/notification_model.cpp.o.d"
  "/root/repo/src/harness/dumbbell_runner.cpp" "CMakeFiles/fncc_core.dir/src/harness/dumbbell_runner.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/harness/dumbbell_runner.cpp.o.d"
  "/root/repo/src/harness/fat_tree_runner.cpp" "CMakeFiles/fncc_core.dir/src/harness/fat_tree_runner.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/harness/fat_tree_runner.cpp.o.d"
  "/root/repo/src/harness/scenario.cpp" "CMakeFiles/fncc_core.dir/src/harness/scenario.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/harness/scenario.cpp.o.d"
  "/root/repo/src/net/egress_port.cpp" "CMakeFiles/fncc_core.dir/src/net/egress_port.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/net/egress_port.cpp.o.d"
  "/root/repo/src/net/network.cpp" "CMakeFiles/fncc_core.dir/src/net/network.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/net/network.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "CMakeFiles/fncc_core.dir/src/net/packet.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/net/packet.cpp.o.d"
  "/root/repo/src/net/packet_pool.cpp" "CMakeFiles/fncc_core.dir/src/net/packet_pool.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/net/packet_pool.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "CMakeFiles/fncc_core.dir/src/net/routing.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/net/routing.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "CMakeFiles/fncc_core.dir/src/net/switch.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/net/switch.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "CMakeFiles/fncc_core.dir/src/net/topology.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/net/topology.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/fncc_core.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "CMakeFiles/fncc_core.dir/src/sim/log.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/sim/log.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/fncc_core.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/stats/csv.cpp" "CMakeFiles/fncc_core.dir/src/stats/csv.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/stats/csv.cpp.o.d"
  "/root/repo/src/stats/fct.cpp" "CMakeFiles/fncc_core.dir/src/stats/fct.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/stats/fct.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "CMakeFiles/fncc_core.dir/src/stats/percentile.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/stats/percentile.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "CMakeFiles/fncc_core.dir/src/stats/timeseries.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/stats/timeseries.cpp.o.d"
  "/root/repo/src/transport/host.cpp" "CMakeFiles/fncc_core.dir/src/transport/host.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/transport/host.cpp.o.d"
  "/root/repo/src/transport/sender_qp.cpp" "CMakeFiles/fncc_core.dir/src/transport/sender_qp.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/transport/sender_qp.cpp.o.d"
  "/root/repo/src/workload/cdf.cpp" "CMakeFiles/fncc_core.dir/src/workload/cdf.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/workload/cdf.cpp.o.d"
  "/root/repo/src/workload/traffic_gen.cpp" "CMakeFiles/fncc_core.dir/src/workload/traffic_gen.cpp.o" "gcc" "CMakeFiles/fncc_core.dir/src/workload/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
