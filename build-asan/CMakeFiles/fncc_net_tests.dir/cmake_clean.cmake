file(REMOVE_RECURSE
  "CMakeFiles/fncc_net_tests.dir/tests/net/egress_port_test.cpp.o"
  "CMakeFiles/fncc_net_tests.dir/tests/net/egress_port_test.cpp.o.d"
  "CMakeFiles/fncc_net_tests.dir/tests/net/packet_pool_test.cpp.o"
  "CMakeFiles/fncc_net_tests.dir/tests/net/packet_pool_test.cpp.o.d"
  "CMakeFiles/fncc_net_tests.dir/tests/net/routing_test.cpp.o"
  "CMakeFiles/fncc_net_tests.dir/tests/net/routing_test.cpp.o.d"
  "CMakeFiles/fncc_net_tests.dir/tests/net/spanning_tree_test.cpp.o"
  "CMakeFiles/fncc_net_tests.dir/tests/net/spanning_tree_test.cpp.o.d"
  "CMakeFiles/fncc_net_tests.dir/tests/net/switch_test.cpp.o"
  "CMakeFiles/fncc_net_tests.dir/tests/net/switch_test.cpp.o.d"
  "CMakeFiles/fncc_net_tests.dir/tests/net/topology_test.cpp.o"
  "CMakeFiles/fncc_net_tests.dir/tests/net/topology_test.cpp.o.d"
  "fncc_net_tests"
  "fncc_net_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fncc_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
