
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/egress_port_test.cpp" "CMakeFiles/fncc_net_tests.dir/tests/net/egress_port_test.cpp.o" "gcc" "CMakeFiles/fncc_net_tests.dir/tests/net/egress_port_test.cpp.o.d"
  "/root/repo/tests/net/packet_pool_test.cpp" "CMakeFiles/fncc_net_tests.dir/tests/net/packet_pool_test.cpp.o" "gcc" "CMakeFiles/fncc_net_tests.dir/tests/net/packet_pool_test.cpp.o.d"
  "/root/repo/tests/net/routing_test.cpp" "CMakeFiles/fncc_net_tests.dir/tests/net/routing_test.cpp.o" "gcc" "CMakeFiles/fncc_net_tests.dir/tests/net/routing_test.cpp.o.d"
  "/root/repo/tests/net/spanning_tree_test.cpp" "CMakeFiles/fncc_net_tests.dir/tests/net/spanning_tree_test.cpp.o" "gcc" "CMakeFiles/fncc_net_tests.dir/tests/net/spanning_tree_test.cpp.o.d"
  "/root/repo/tests/net/switch_test.cpp" "CMakeFiles/fncc_net_tests.dir/tests/net/switch_test.cpp.o" "gcc" "CMakeFiles/fncc_net_tests.dir/tests/net/switch_test.cpp.o.d"
  "/root/repo/tests/net/topology_test.cpp" "CMakeFiles/fncc_net_tests.dir/tests/net/topology_test.cpp.o" "gcc" "CMakeFiles/fncc_net_tests.dir/tests/net/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/CMakeFiles/fncc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
