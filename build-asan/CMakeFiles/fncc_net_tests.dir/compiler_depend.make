# Empty compiler generated dependencies file for fncc_net_tests.
# This may be replaced when dependencies are built.
