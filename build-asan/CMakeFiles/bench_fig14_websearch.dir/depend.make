# Empty dependencies file for bench_fig14_websearch.
# This may be replaced when dependencies are built.
