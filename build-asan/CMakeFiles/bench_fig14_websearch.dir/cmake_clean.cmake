file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_websearch.dir/bench/bench_fig14_websearch.cpp.o"
  "CMakeFiles/bench_fig14_websearch.dir/bench/bench_fig14_websearch.cpp.o.d"
  "bench_fig14_websearch"
  "bench_fig14_websearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_websearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
