# Empty dependencies file for example_incast_lhcs.
# This may be replaced when dependencies are built.
