file(REMOVE_RECURSE
  "CMakeFiles/example_incast_lhcs.dir/examples/incast_lhcs.cpp.o"
  "CMakeFiles/example_incast_lhcs.dir/examples/incast_lhcs.cpp.o.d"
  "example_incast_lhcs"
  "example_incast_lhcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incast_lhcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
