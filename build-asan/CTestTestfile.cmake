# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-asan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cc "/root/repo/build-asan/fncc_cc_tests")
set_tests_properties(cc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core "/root/repo/build-asan/fncc_core_tests")
set_tests_properties(core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
add_test(harness "/root/repo/build-asan/fncc_harness_tests")
set_tests_properties(harness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration "/root/repo/build-asan/fncc_integration_tests")
set_tests_properties(integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
add_test(net "/root/repo/build-asan/fncc_net_tests")
set_tests_properties(net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sim "/root/repo/build-asan/fncc_sim_tests")
set_tests_properties(sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
add_test(stats "/root/repo/build-asan/fncc_stats_tests")
set_tests_properties(stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
add_test(transport "/root/repo/build-asan/fncc_transport_tests")
set_tests_properties(transport PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
add_test(workload "/root/repo/build-asan/fncc_workload_tests")
set_tests_properties(workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;40;add_test;/root/repo/CMakeLists.txt;0;")
