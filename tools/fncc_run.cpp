// fncc_run — the single declarative experiment driver.
//
//   fncc_run [spec-file] [key=value ...]   run a spec (overrides win)
//   fncc_run --list                        registered topologies/workloads
//   fncc_run --print [spec...]             resolve + expand, don't run
//   fncc_run --smoke                       tiny run of every topology x
//                                          workload pair (CI gate)
//
// With no spec file the built-in defaults (dumbbell + two elephants) run;
// every knob is a key=value override, e.g.
//
//   fncc_run specs/fig14_websearch.exp workload.num_flows=200 topology.k=4
//   fncc_run topology.kind=leaf_spine workload.kind=all_to_all
//            run.duration_us=0 sweep.mode=all output.fct_csv=fct.csv
//
// The thread budget resolves --threads N > FNCC_THREADS > hardware
// concurrency. Multi-point sweeps fan points over it; a single point
// hands it to the intra-point domain scheduler (scenario.exec_domains).
// Results are bit-identical at any thread and domain count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "exec/wall_timer.hpp"
#include "harness/experiment_runner.hpp"
#include "stats/fct_sink.hpp"

namespace {

using namespace fncc;

void PrintRegistries() {
  std::printf("topologies:\n");
  for (const std::string& name : TopologyRegistry::Names()) {
    std::printf("  %-20s %s\n", name.c_str(),
                TopologyRegistry::Describe(name).c_str());
  }
  std::printf("\nworkloads:\n");
  for (const std::string& name : WorkloadRegistry::Names()) {
    std::printf("  %-20s %s\n", name.c_str(),
                WorkloadRegistry::Describe(name).c_str());
  }
  std::printf("\nflow-size CDFs (workload.cdf):");
  for (const std::string& name : SizeCdf::Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nCC modes (scenario.mode / sweep.mode):");
  for (CcMode mode : kAllCcModes) std::printf(" %s", CcModeName(mode));
  std::printf("\n");
}

void PrintPointSummary(std::size_t index, const ExperimentSpec& point,
                       const ExperimentPointResult& r) {
  std::printf("point %zu%s%s: %s/%s, flows %zu/%zu", index,
              r.label.empty() ? "" : " ", r.label.c_str(),
              point.topology.c_str(), point.workload.c_str(),
              r.flows_completed, r.flows_total);
  if (!r.queue_bytes.empty()) {
    std::printf(", peakQ %.1f KB", r.queue_bytes.Max() / 1e3);
  }
  std::printf(", pauses %llu, drops %llu, rtx %llu, events %llu (%.2fs)\n",
              static_cast<unsigned long long>(r.pause_frames),
              static_cast<unsigned long long>(r.drops),
              static_cast<unsigned long long>(r.retransmits),
              static_cast<unsigned long long>(r.events_processed),
              r.wall_time_seconds);
  // Window telemetry headline (output.pdes_stats / FNCC_PDES_STATS=1):
  // the full picture goes to the per-point _pdes_stats.json.
  if (r.pdes_stats.participants > 0) {
    std::uint64_t steals = 0;
    for (std::uint64_t s : r.pdes_stats.thread_steals) steals += s;
    std::printf(
        "  pdes: %d lane(s) x %d thread(s), %llu windows, %.1f events/window, "
        "%llu stolen lane-windows\n",
        r.pdes_stats.lanes, r.pdes_stats.participants,
        static_cast<unsigned long long>(r.pdes_stats.windows),
        r.pdes_stats.windows > 0
            ? static_cast<double>(r.pdes_stats.events) /
                  static_cast<double>(r.pdes_stats.windows)
            : 0.0,
        static_cast<unsigned long long>(steals));
  }
}

void PrintBucketRows(const std::vector<BucketStats>& rows) {
  std::printf("%12s %8s %8s %8s %8s %8s\n", "size<=", "count", "avg", "p50",
              "p95", "p99");
  for (const BucketStats& b : rows) {
    if (b.count == 0) continue;
    std::printf("%12llu %8zu %8.2f %8.2f %8.2f %8.2f\n",
                static_cast<unsigned long long>(b.max_size_bytes), b.count,
                b.avg, b.p50, b.p95, b.p99);
  }
}

void PrintBucketTable(const std::string& which,
                      const ExperimentPointResult& r) {
  // `which` was validated by ValidateSpec against the same dispatch.
  PrintBucketRows(r.fct.Bucketed(BucketEdgesByName(which)));
}

/// The streamed point's summary: headline quantiles from the sink's
/// online sketches (exact records were never retained) and, when
/// output.buckets asks for one, the sketch-approximate bucket table.
void PrintStreamedSummary(const FctSink& sink, const std::string& buckets) {
  if (sink.count() == 0) return;
  std::printf(
      "  slowdown mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  p99.9 %.2f  "
      "(sketch, n=%llu)\n",
      sink.mean_slowdown(), sink.SlowdownQuantile(50),
      sink.SlowdownQuantile(90), sink.SlowdownQuantile(99),
      sink.SlowdownQuantile(99.9),
      static_cast<unsigned long long>(sink.count()));
  if (!buckets.empty()) PrintBucketRows(sink.BucketedApprox());
}

/// One tiny spec per registered topology x workload pair: every pair must
/// build and run end to end. The ctest tier1 smoke and the CI job call
/// this; a newly registered topology or workload is covered automatically.
/// The "trace" workload needs an input file: a tiny valid trace between
/// hosts 0 and 1 (present in every registered topology), written to the
/// temp dir once per smoke run.
std::string WriteSmokeTrace() {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "fncc_smoke_trace.csv";
  std::ofstream out(path);
  out << "start_us,src,dst,bytes\n";
  for (int i = 0; i < 12; ++i) {
    out << i * 5 << "," << (i % 2) << "," << ((i + 1) % 2) << ",20000\n";
  }
  if (!out.good()) {
    throw SpecError("smoke: cannot write " + path.string());
  }
  return path.string();
}

int RunSmoke(int threads) {
  const std::string trace_path = WriteSmokeTrace();
  std::vector<ExperimentSpec> specs;
  for (const std::string& topo : TopologyRegistry::Names()) {
    for (const std::string& wl : WorkloadRegistry::Names()) {
      ExperimentSpec spec;
      spec.name = topo + "-" + wl;
      spec.topology = topo;
      spec.workload = wl;
      spec.topo.num_senders = 3;
      spec.topo.num_switches = 2;
      spec.topo.merge_switch = 1;
      spec.topo.k = 4;
      spec.topo.leaves = 2;
      spec.topo.spines = 2;
      spec.topo.hosts_per_leaf = 2;
      spec.topo.rails = 2;
      spec.wl.num_flows = 12;
      spec.wl.size_bytes = 20'000;
      spec.wl.groups = (topo == "chain_merge") ? 1 : 2;
      spec.cdf = "fb_hadoop";
      if (wl == "trace") spec.wl.trace_file = trace_path;
      if (wl == "elephants") {
        spec.run.duration = Microseconds(50);
      } else {
        spec.run.duration = 0;  // run to completion
        spec.run.max_sim_time = 50 * kMillisecond;
      }
      ValidateSpec(spec);
      specs.push_back(std::move(spec));
    }
  }
  // The streaming launch path at smoke scale: a poisson dumbbell pulled
  // through the bounded lookahead window (must byte-match the eager run —
  // the harness tests assert that; here it just has to complete).
  {
    ExperimentSpec spec;
    spec.name = "dumbbell-poisson-streaming";
    spec.topology = "dumbbell";
    spec.workload = "poisson";
    spec.topo.num_senders = 3;
    spec.wl.num_flows = 64;
    spec.wl.load = 0.5;
    spec.cdf = "fb_hadoop";
    spec.run.duration = 0;
    spec.run.monitor = false;
    spec.run.launch_window = Microseconds(100);
    spec.run.max_sim_time = 50 * kMillisecond;
    ValidateSpec(spec);
    specs.push_back(std::move(spec));
  }
  // The PDES showcase at smoke scale: the specs/fat_tree_k16.exp point
  // with a short horizon, run through the auto domain partition (k+1
  // lanes) so CI exercises the cross-lane handoff path on every build.
  {
    ExperimentSpec spec;
    spec.name = "fat_tree_k16-pdes-short";
    spec.topology = "fat_tree";
    spec.workload = "permutation";
    spec.topo.k = 16;
    spec.wl.num_flows = 64;
    spec.wl.size_bytes = 20'000;
    spec.cdf = "fb_hadoop";
    spec.scenario.exec_domains = 0;  // auto
    spec.run.duration = 0;  // run to completion
    spec.run.max_sim_time = 50 * kMillisecond;
    ValidateSpec(spec);
    specs.push_back(std::move(spec));
  }
  // Streaming x PDES composed: the same k=16 point with a pinned 8-lane
  // partition, flows pulled through the launch window, and completions
  // drained to a stats-only FctSink — so every CI build exercises the
  // lane-aware launch, per-lane drain and slot recycling together (the
  // tests/streaming suite asserts the byte-identity; here the composition
  // just has to run and account every flow through the sink).
  FctSink streamed_sink{FctSinkOptions{}};  // stats-only, no CSV
  std::size_t streamed_index = 0;
  {
    ExperimentSpec spec;
    spec.name = "fat_tree_k16-pdes-streamed";
    spec.topology = "fat_tree";
    spec.workload = "permutation";
    spec.topo.k = 16;
    spec.wl.num_flows = 64;
    spec.wl.size_bytes = 20'000;
    spec.cdf = "fb_hadoop";
    spec.scenario.exec_domains = 8;
    spec.run.duration = 0;  // run to completion
    spec.run.monitor = false;
    spec.run.launch_window = Microseconds(100);
    spec.run.max_sim_time = 50 * kMillisecond;
    ValidateSpec(spec);
    streamed_index = specs.size();
    specs.push_back(std::move(spec));
  }
  std::vector<FctSink*> sinks(specs.size(), nullptr);
  sinks[streamed_index] = &streamed_sink;
  std::printf("smoke: %zu topology x workload pairs on %d thread(s)\n",
              specs.size(), threads);
  const std::vector<ExperimentPointResult> results =
      RunExperimentPoints(specs, threads, sinks);
  int failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentPointResult& r = results[i];
    const bool timeseries_only = specs[i].workload == "elephants";
    const bool ok = timeseries_only
                        ? r.events_processed > 0
                        : r.flows_completed == r.flows_total &&
                              r.flows_total > 0;
    std::printf("  %-40s %s (flows %zu/%zu, events %llu)\n",
                specs[i].name.c_str(), ok ? "OK" : "FAILED",
                r.flows_completed, r.flows_total,
                static_cast<unsigned long long>(r.events_processed));
    if (!ok) ++failures;
  }
  if (streamed_sink.count() != results[streamed_index].flows_total) {
    std::fprintf(stderr,
                 "smoke: streamed sink drained %llu of %zu flows\n",
                 static_cast<unsigned long long>(streamed_sink.count()),
                 results[streamed_index].flows_total);
    ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "smoke: %d pair(s) failed\n", failures);
    return 1;
  }
  std::printf("smoke: all pairs OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false, print_only = false, smoke = false;
  int cli_threads = 0;  // 0 = unset, fall back to FNCC_THREADS / hardware
  std::string spec_file;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--print") {
      print_only = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc || (cli_threads = std::atoi(argv[++i])) < 1) {
        std::fprintf(stderr,
                     "fncc_run: --threads needs a positive integer\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fncc_run [--list | --smoke | --print] [--threads N] "
          "[spec-file] [key=value ...]\n"
          "  --threads N   thread budget; precedence is --threads, then\n"
          "                the FNCC_THREADS environment variable, then\n"
          "                hardware concurrency\n");
      return 0;
    } else if (arg.find('=') != std::string::npos) {
      overrides.push_back(arg);
    } else if (spec_file.empty()) {
      spec_file = arg;
    } else {
      std::fprintf(stderr, "fncc_run: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  // --threads beats FNCC_THREADS beats hardware concurrency.
  const int threads =
      cli_threads > 0 ? cli_threads : ThreadPool::DefaultThreadCount();

  try {
    if (list) {
      PrintRegistries();
      return 0;
    }
    if (smoke) return RunSmoke(threads);

    ExperimentSpec spec =
        spec_file.empty() ? ExperimentSpec{} : ParseSpecFile(spec_file);
    ApplySpecOverrides(spec, overrides);
    ValidateSpec(spec);
    const std::vector<ExperimentSpec> points = ExpandSweep(spec);

    if (print_only) {
      std::printf("%s", SpecToText(spec).c_str());
      std::printf("\n# %zu point(s):", points.size());
      for (const ExperimentSpec& p : points) {
        std::printf(" [%s]", p.label.empty() ? "default" : p.label.c_str());
      }
      std::printf("\n");
      return 0;
    }

    std::printf("%s: %zu point(s) on %d thread(s)\n", spec.name.c_str(),
                points.size(), threads);

    // Streaming FCT collection: one sink per point, opened on the exact
    // CSV paths WriteExperimentOutputs will record, writing rows as flows
    // complete. The output directory must exist before the run starts.
    std::vector<std::unique_ptr<FctSink>> sinks;
    std::vector<FctSink*> sink_ptrs;
    if (spec.output.stream_fct) {
      const std::filesystem::path dir =
          spec.output.dir.empty() ? "." : spec.output.dir;
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        throw SpecError("cannot create output.dir '" + dir.string() +
                        "': " + ec.message());
      }
      const std::vector<std::string> csv_paths =
          PointFctCsvPaths(spec, points);
      for (const std::string& path : csv_paths) {
        FctSinkOptions options;
        options.csv_path = path;
        if (!spec.output.buckets.empty()) {
          options.bucket_edges = BucketEdgesByName(spec.output.buckets);
        }
        sinks.push_back(std::make_unique<FctSink>(std::move(options)));
        sink_ptrs.push_back(sinks.back().get());
      }
    }

    const WallTimer timer;
    const std::vector<ExperimentPointResult> results =
        RunExperimentPoints(points, threads, sink_ptrs);
    const double wall = timer.Seconds();

    for (auto& sink : sinks) {
      if (!sink->Finish()) {
        throw SpecError("failed to write " + sink->csv_path());
      }
    }

    for (std::size_t i = 0; i < results.size(); ++i) {
      PrintPointSummary(i, points[i], results[i]);
      if (spec.output.stream_fct) {
        PrintStreamedSummary(*sinks[i], spec.output.buckets);
      } else if (!spec.output.buckets.empty() && results[i].fct.count() > 0) {
        PrintBucketTable(spec.output.buckets, results[i]);
      }
    }
    std::printf("total %.2fs\n", wall);

    const ExperimentArtifacts artifacts =
        WriteExperimentOutputs(spec, points, results, threads, wall);
    for (const std::string& file : artifacts.files) {
      std::printf("wrote %s\n", file.c_str());
    }
    return 0;
  } catch (const SpecError& e) {
    std::fprintf(stderr, "fncc_run: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fncc_run: %s\n", e.what());
    return 1;
  }
}
