// fncc_run — the single declarative experiment driver.
//
//   fncc_run [spec-file] [key=value ...]   run a spec (overrides win)
//   fncc_run --list                        registered topologies/workloads
//   fncc_run --print [spec...]             resolve + expand, don't run
//   fncc_run --smoke                       tiny run of every topology x
//                                          workload pair (CI gate)
//
// With no spec file the built-in defaults (dumbbell + two elephants) run;
// every knob is a key=value override, e.g.
//
//   fncc_run specs/fig14_websearch.exp workload.num_flows=200 topology.k=4
//   fncc_run topology.kind=leaf_spine workload.kind=all_to_all
//            run.duration_us=0 sweep.mode=all output.fct_csv=fct.csv
//
// The thread budget resolves --threads N > FNCC_THREADS > hardware
// concurrency. Multi-point sweeps fan points over it; a single point
// hands it to the intra-point domain scheduler (scenario.exec_domains).
// Results are bit-identical at any thread and domain count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "exec/wall_timer.hpp"
#include "harness/experiment_runner.hpp"

namespace {

using namespace fncc;

void PrintRegistries() {
  std::printf("topologies:\n");
  for (const std::string& name : TopologyRegistry::Names()) {
    std::printf("  %-20s %s\n", name.c_str(),
                TopologyRegistry::Describe(name).c_str());
  }
  std::printf("\nworkloads:\n");
  for (const std::string& name : WorkloadRegistry::Names()) {
    std::printf("  %-20s %s\n", name.c_str(),
                WorkloadRegistry::Describe(name).c_str());
  }
  std::printf("\nflow-size CDFs (workload.cdf):");
  for (const std::string& name : SizeCdf::Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nCC modes (scenario.mode / sweep.mode):");
  for (CcMode mode : kAllCcModes) std::printf(" %s", CcModeName(mode));
  std::printf("\n");
}

void PrintPointSummary(std::size_t index, const ExperimentSpec& point,
                       const ExperimentPointResult& r) {
  std::printf("point %zu%s%s: %s/%s, flows %zu/%zu", index,
              r.label.empty() ? "" : " ", r.label.c_str(),
              point.topology.c_str(), point.workload.c_str(),
              r.flows_completed, r.flows_total);
  if (!r.queue_bytes.empty()) {
    std::printf(", peakQ %.1f KB", r.queue_bytes.Max() / 1e3);
  }
  std::printf(", pauses %llu, drops %llu, rtx %llu, events %llu (%.2fs)\n",
              static_cast<unsigned long long>(r.pause_frames),
              static_cast<unsigned long long>(r.drops),
              static_cast<unsigned long long>(r.retransmits),
              static_cast<unsigned long long>(r.events_processed),
              r.wall_time_seconds);
}

void PrintBucketTable(const std::string& which,
                      const ExperimentPointResult& r) {
  // `which` was validated by ValidateSpec against the same dispatch.
  const std::vector<std::uint64_t> edges = BucketEdgesByName(which);
  std::printf("%12s %8s %8s %8s %8s %8s\n", "size<=", "count", "avg", "p50",
              "p95", "p99");
  for (const BucketStats& b : r.fct.Bucketed(edges)) {
    if (b.count == 0) continue;
    std::printf("%12llu %8zu %8.2f %8.2f %8.2f %8.2f\n",
                static_cast<unsigned long long>(b.max_size_bytes), b.count,
                b.avg, b.p50, b.p95, b.p99);
  }
}

/// One tiny spec per registered topology x workload pair: every pair must
/// build and run end to end. The ctest tier1 smoke and the CI job call
/// this; a newly registered topology or workload is covered automatically.
int RunSmoke(int threads) {
  std::vector<ExperimentSpec> specs;
  for (const std::string& topo : TopologyRegistry::Names()) {
    for (const std::string& wl : WorkloadRegistry::Names()) {
      ExperimentSpec spec;
      spec.name = topo + "-" + wl;
      spec.topology = topo;
      spec.workload = wl;
      spec.topo.num_senders = 3;
      spec.topo.num_switches = 2;
      spec.topo.merge_switch = 1;
      spec.topo.k = 4;
      spec.topo.leaves = 2;
      spec.topo.spines = 2;
      spec.topo.hosts_per_leaf = 2;
      spec.topo.rails = 2;
      spec.wl.num_flows = 12;
      spec.wl.size_bytes = 20'000;
      spec.wl.groups = (topo == "chain_merge") ? 1 : 2;
      spec.cdf = "fb_hadoop";
      if (wl == "elephants") {
        spec.run.duration = Microseconds(50);
      } else {
        spec.run.duration = 0;  // run to completion
        spec.run.max_sim_time = 50 * kMillisecond;
      }
      ValidateSpec(spec);
      specs.push_back(std::move(spec));
    }
  }
  // The PDES showcase at smoke scale: the specs/fat_tree_k16.exp point
  // with a short horizon, run through the auto domain partition (k+1
  // lanes) so CI exercises the cross-lane handoff path on every build.
  {
    ExperimentSpec spec;
    spec.name = "fat_tree_k16-pdes-short";
    spec.topology = "fat_tree";
    spec.workload = "permutation";
    spec.topo.k = 16;
    spec.wl.num_flows = 64;
    spec.wl.size_bytes = 20'000;
    spec.cdf = "fb_hadoop";
    spec.scenario.exec_domains = 0;  // auto
    spec.run.duration = 0;  // run to completion
    spec.run.max_sim_time = 50 * kMillisecond;
    ValidateSpec(spec);
    specs.push_back(std::move(spec));
  }
  std::printf("smoke: %zu topology x workload pairs on %d thread(s)\n",
              specs.size(), threads);
  const std::vector<ExperimentPointResult> results =
      RunExperimentPoints(specs, threads);
  int failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentPointResult& r = results[i];
    const bool timeseries_only = specs[i].workload == "elephants";
    const bool ok = timeseries_only
                        ? r.events_processed > 0
                        : r.flows_completed == r.flows_total &&
                              r.flows_total > 0;
    std::printf("  %-40s %s (flows %zu/%zu, events %llu)\n",
                specs[i].name.c_str(), ok ? "OK" : "FAILED",
                r.flows_completed, r.flows_total,
                static_cast<unsigned long long>(r.events_processed));
    if (!ok) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "smoke: %d pair(s) failed\n", failures);
    return 1;
  }
  std::printf("smoke: all pairs OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false, print_only = false, smoke = false;
  int cli_threads = 0;  // 0 = unset, fall back to FNCC_THREADS / hardware
  std::string spec_file;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--print") {
      print_only = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc || (cli_threads = std::atoi(argv[++i])) < 1) {
        std::fprintf(stderr,
                     "fncc_run: --threads needs a positive integer\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fncc_run [--list | --smoke | --print] [--threads N] "
          "[spec-file] [key=value ...]\n"
          "  --threads N   thread budget; precedence is --threads, then\n"
          "                the FNCC_THREADS environment variable, then\n"
          "                hardware concurrency\n");
      return 0;
    } else if (arg.find('=') != std::string::npos) {
      overrides.push_back(arg);
    } else if (spec_file.empty()) {
      spec_file = arg;
    } else {
      std::fprintf(stderr, "fncc_run: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  // --threads beats FNCC_THREADS beats hardware concurrency.
  const int threads =
      cli_threads > 0 ? cli_threads : ThreadPool::DefaultThreadCount();

  try {
    if (list) {
      PrintRegistries();
      return 0;
    }
    if (smoke) return RunSmoke(threads);

    ExperimentSpec spec =
        spec_file.empty() ? ExperimentSpec{} : ParseSpecFile(spec_file);
    ApplySpecOverrides(spec, overrides);
    ValidateSpec(spec);
    const std::vector<ExperimentSpec> points = ExpandSweep(spec);

    if (print_only) {
      std::printf("%s", SpecToText(spec).c_str());
      std::printf("\n# %zu point(s):", points.size());
      for (const ExperimentSpec& p : points) {
        std::printf(" [%s]", p.label.empty() ? "default" : p.label.c_str());
      }
      std::printf("\n");
      return 0;
    }

    std::printf("%s: %zu point(s) on %d thread(s)\n", spec.name.c_str(),
                points.size(), threads);
    const WallTimer timer;
    const std::vector<ExperimentPointResult> results =
        RunExperimentPoints(points, threads);
    const double wall = timer.Seconds();

    for (std::size_t i = 0; i < results.size(); ++i) {
      PrintPointSummary(i, points[i], results[i]);
      if (!spec.output.buckets.empty() && results[i].fct.count() > 0) {
        PrintBucketTable(spec.output.buckets, results[i]);
      }
    }
    std::printf("total %.2fs\n", wall);

    const ExperimentArtifacts artifacts =
        WriteExperimentOutputs(spec, points, results, threads, wall);
    for (const std::string& file : artifacts.files) {
      std::printf("wrote %s\n", file.c_str());
    }
    return 0;
  } catch (const SpecError& e) {
    std::fprintf(stderr, "fncc_run: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fncc_run: %s\n", e.what());
    return 1;
  }
}
